module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro

exception Injected of int * int

let () =
  Printexc.register_printer (function
    | Injected (w, k) -> Some (Printf.sprintf "Lcws_fault.Fault.Injected(worker %d, task %d)" w k)
    | _ -> None)

type plan = {
  seed : int64;
  stall_prob : float;
  stall_polls : int;
  drop_signal_prob : float;
  delay_signal_prob : float;
  delay_polls : int;
  steal_fail_prob : float;
  inject_exn : (int * int) option;
  cancel_at : (int * int) option;
}

let no_faults =
  {
    seed = 0L;
    stall_prob = 0.;
    stall_polls = 4;
    drop_signal_prob = 0.;
    delay_signal_prob = 0.;
    delay_polls = 4;
    steal_fail_prob = 0.;
    inject_exn = None;
    cancel_at = None;
  }

(* --- plan <-> string -------------------------------------------------- *)

(* %h round-trips doubles exactly and stays locale-proof; plans live in
   failing-seed artifacts, so exact replay matters more than prettiness.
   Probabilities from presets are short decimals anyway. *)
let prob_to_string p = if Float.is_integer (p *. 100.) then Printf.sprintf "%g" p else Printf.sprintf "%h" p

let plan_to_string p =
  let buf = Buffer.create 64 in
  let sep () = if Buffer.length buf > 0 then Buffer.add_char buf ',' in
  let addf fmt = sep (); Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "seed=%Ld" p.seed;
  if p.stall_prob > 0. then addf "stall=%s:%d" (prob_to_string p.stall_prob) p.stall_polls;
  if p.drop_signal_prob > 0. then addf "drop=%s" (prob_to_string p.drop_signal_prob);
  if p.delay_signal_prob > 0. then
    addf "delay=%s:%d" (prob_to_string p.delay_signal_prob) p.delay_polls;
  if p.steal_fail_prob > 0. then addf "steal_fail=%s" (prob_to_string p.steal_fail_prob);
  (match p.inject_exn with Some (w, k) -> addf "inject=%d:%d" w k | None -> ());
  (match p.cancel_at with Some (w, n) -> addf "cancel=%d:%d" w n | None -> ());
  Buffer.contents buf

let plan_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_prob key v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | _ -> fail "%s: probability expected in [0,1], got %S" key v
  in
  let parse_pair key v =
    match String.split_on_char ':' v with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> Ok (a, b)
        | _ -> fail "%s: expected INT:INT, got %S" key v)
    | _ -> fail "%s: expected INT:INT, got %S" key v
  in
  let parse_prob_pair key v =
    match String.split_on_char ':' v with
    | [ a; b ] -> (
        match (float_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a >= 0. && a <= 1. && b > 0 -> Ok (a, b)
        | _ -> fail "%s: expected PROB:POLLS, got %S" key v)
    | _ -> fail "%s: expected PROB:POLLS, got %S" key v
  in
  let rec go plan = function
    | [] -> Ok plan
    | kv :: rest -> (
        let k, v =
          match String.index_opt kv '=' with
          | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
          | None -> (kv, "")
        in
        let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
        match String.trim k with
        | "seed" -> (
            match Int64.of_string_opt v with
            | Some seed -> go { plan with seed } rest
            | None -> fail "seed: expected an integer, got %S" v)
        | "stall" ->
            let* stall_prob, stall_polls = parse_prob_pair "stall" v in
            go { plan with stall_prob; stall_polls } rest
        | "drop" ->
            let* drop_signal_prob = parse_prob "drop" v in
            go { plan with drop_signal_prob } rest
        | "delay" ->
            let* delay_signal_prob, delay_polls = parse_prob_pair "delay" v in
            go { plan with delay_signal_prob; delay_polls } rest
        | "steal_fail" ->
            let* steal_fail_prob = parse_prob "steal_fail" v in
            go { plan with steal_fail_prob } rest
        | "inject" ->
            let* wk = parse_pair "inject" v in
            go { plan with inject_exn = Some wk } rest
        | "cancel" ->
            let* wn = parse_pair "cancel" v in
            go { plan with cancel_at = Some wn } rest
        | "" -> go plan rest
        | k -> fail "unknown plan field %S" k)
  in
  go no_faults (String.split_on_char ',' (String.trim s))

let preset ?(seed = 1L) name =
  let p = { no_faults with seed } in
  match name with
  | "none" -> Some p
  | "storm" -> Some { p with drop_signal_prob = 0.5; delay_signal_prob = 0.3; delay_polls = 8 }
  | "stall" -> Some { p with stall_prob = 0.05; stall_polls = 16 }
  | "steal" -> Some { p with steal_fail_prob = 0.5 }
  | "exn" -> Some { p with inject_exn = Some (0, 5) }
  | "cancel" -> Some { p with cancel_at = Some (0, 50) }
  | "mixed" ->
      Some
        {
          p with
          stall_prob = 0.02;
          stall_polls = 8;
          drop_signal_prob = 0.3;
          delay_signal_prob = 0.2;
          delay_polls = 6;
          steal_fail_prob = 0.2;
        }
  | "park_storm" ->
      (* The parking adversary: steal vetoes starve idle workers into
         the lot, stalls land on the park poll point (stretching the
         window between the last failed sweep and the block), and
         delayed signals stretch the notify → expose → doorbell chain a
         parker's wake depends on. *)
      Some
        {
          p with
          stall_prob = 0.08;
          stall_polls = 12;
          steal_fail_prob = 0.35;
          delay_signal_prob = 0.2;
          delay_polls = 8;
        }
  | _ -> None

let preset_names = [ "none"; "storm"; "stall"; "steal"; "exn"; "cancel"; "mixed"; "park_storm" ]

(* --- runtime state ---------------------------------------------------- *)

(* Per worker; touched only from that worker's domain, so plain fields. *)
type wstate = {
  rng : Xoshiro.t;
  mutable polls : int;  (** poll points seen (for cancel_at) *)
  mutable tasks : int;  (** task executions seen (for inject_exn) *)
  mutable stall_left : int;  (** remaining polls in the current stall *)
  mutable delay_left : int;  (** remaining polls the pending signal stays deferred *)
}

type t = { p : plan; workers : wstate array }

let none = { p = no_faults; workers = [||] }

let active t = t.workers <> [||]

let plan t = t.p

let create p ~num_workers =
  if num_workers < 1 then invalid_arg "Fault.create: num_workers must be >= 1";
  let root = Xoshiro.create p.seed in
  (* Offset the split index so worker i's fault stream differs from the
     scheduler's victim-selection stream for the same (seed, i). *)
  let workers =
    Array.init num_workers (fun i ->
        {
          rng = Xoshiro.split root (i + 0x5eed);
          polls = 0;
          tasks = 0;
          stall_left = 0;
          delay_left = 0;
        })
  in
  { p; workers }

let roll rng prob = prob > 0. && Xoshiro.float rng < prob

type poll_action = Pass | Stalled | Cancel_job

let poll t ~worker ~metrics:(m : Metrics.t) =
  let w = t.workers.(worker) in
  w.polls <- w.polls + 1;
  if w.delay_left > 0 then w.delay_left <- w.delay_left - 1;
  match t.p.cancel_at with
  | Some (cw, n) when cw = worker && w.polls = n -> Cancel_job
  | _ ->
      if w.stall_left > 0 then begin
        w.stall_left <- w.stall_left - 1;
        m.stalls <- m.stalls + 1;
        Stalled
      end
      else if roll w.rng t.p.stall_prob then begin
        (* This poll is the first stalled one. *)
        w.stall_left <- Xoshiro.int w.rng t.p.stall_polls;
        m.stalls <- m.stalls + 1;
        Stalled
      end
      else Pass

type signal_action = Handle | Defer | Drop

let on_signal t ~worker ~metrics:(m : Metrics.t) =
  let w = t.workers.(worker) in
  if w.stall_left > 0 || w.delay_left > 0 then begin
    m.signals_delayed <- m.signals_delayed + 1;
    Defer
  end
  else if roll w.rng t.p.drop_signal_prob then begin
    m.signals_dropped <- m.signals_dropped + 1;
    Drop
  end
  else if roll w.rng t.p.delay_signal_prob then begin
    w.delay_left <- t.p.delay_polls;
    m.signals_delayed <- m.signals_delayed + 1;
    Defer
  end
  else Handle

let steal_veto t ~thief ~metrics:(m : Metrics.t) =
  let w = t.workers.(thief) in
  if roll w.rng t.p.steal_fail_prob then begin
    m.steal_vetoes <- m.steal_vetoes + 1;
    true
  end
  else false

let inject_now t ~worker ~metrics:(m : Metrics.t) =
  match t.p.inject_exn with
  | None -> None
  | Some (iw, k) ->
      if iw <> worker then None
      else begin
        let w = t.workers.(worker) in
        w.tasks <- w.tasks + 1;
        if w.tasks = k then begin
          m.exns_injected <- m.exns_injected + 1;
          Some (worker, k)
        end
        else None
      end

(* --- trace codes ------------------------------------------------------ *)

let code_stall = 1

let code_drop_signal = 2

let code_delay_signal = 3

let code_steal_veto = 4

let code_inject = 5

let code_cancel = 6
