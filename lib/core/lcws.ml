(** Umbrella module: the public face of the LCWS reproduction.

    {b Quickstart}
    {[
      open Lcws

      let () =
        let pool = Scheduler.Pool.create ~num_workers:4 ~variant:Scheduler.Signal () in
        (* Structured parallelism ({!Scheduler.Ops}) and effects-based
           futures inside a job: *)
        let total =
          Scheduler.Pool.run pool (fun () ->
            let f = Scheduler.Future.spawn (fun () -> 40 + 2) in
            let s =
              Parallel.map_reduce (fun x -> x * x) ( + ) 0 (Array.init 1_000 Fun.id)
            in
            s + Scheduler.Future.await f)
        in
        (* External submission — any thread, no [Pool.run] required: *)
        let f = Scheduler.Pool.submit pool (fun () -> total * 2) in
        Printf.printf "%d %d\n" total (Scheduler.Future.await f);
        Scheduler.Pool.shutdown pool
    ]}

    Layers, bottom-up:
    - {!Metrics}, {!Xoshiro}, {!Backoff}, {!Fastmath} — runtime support;
    - {!Split_deque}, {!Chase_lev}, {!Lace_deque}, {!Private_deque} — the
      work-stealing deques (the paper's Listing 2 and its comparators);
    - {!Trace}, {!Histogram}, {!Chrome_trace} — low-overhead scheduler
      event tracing, steal/exposure latency percentiles and Perfetto
      export;
    - {!Scheduler} — the five schedulers (WS, USLCWS, Signal, Cons,
      Half) over real domains (Listings 1 and 3), generic over the
      {!Deque_intf.DEQUE} signature; its effects-based task core
      ({!Scheduler.Ops} for structured fork/join and loops,
      {!Scheduler.Future} for suspendable fibers with cancellation,
      [Pool.submit] for external submission);
    - {!Parallel}, {!Psort}, {!Prandom} — a Parlay-style algorithm
      toolkit on top of the scheduler;
    - {!Pbbs} — the PBBS-like benchmark suite;
    - {!Sim} — the deterministic multiprocessor simulator used for the
      speedup figures, with the Table 1 machine models;
    - {!Fault}, {!Chaos} — deterministic seeded fault injection threaded
      through the scheduler's poll points, and the chaos harness that
      runs random DAG workloads under fault plans against a sequential
      oracle;
    - {!Check} — the deterministic interleaving checker for the deque
      and protocol layers (bounded exhaustive exploration with
      sleep-set pruning, counterexample replay, seeded-mutation
      self-tests, incl. the fiber park/resume handshake);
    - {!Harness} — experiment matrices, statistics and figure printers. *)

module Metrics = Lcws_sync.Metrics
module Xoshiro = Lcws_sync.Xoshiro
module Backoff = Lcws_sync.Backoff
module Ewma = Lcws_sync.Ewma
module Injector = Lcws_sched.Sched_protocol.Injector
module Policy_switch = Lcws_sched.Sched_protocol.Policy_switch
module Policy_governor = Lcws_sched.Policy_governor
module Fastmath = Lcws_sync.Fastmath
module Padding = Lcws_sync.Padding
module Deque_intf = Lcws_deque.Deque_intf
module Split_deque = Lcws_deque.Split_deque
module Chase_lev = Lcws_deque.Chase_lev
module Lace_deque = Lcws_deque.Lace_deque
module Private_deque = Lcws_deque.Private_deque
module Trace = Lcws_trace.Trace
module Histogram = Lcws_trace.Histogram
module Chrome_trace = Lcws_trace.Chrome_trace
module Fault = Lcws_fault.Fault
module Scheduler = Lcws_sched.Scheduler
module Chaos = Lcws_chaos.Chaos
module Parallel = Lcws_parlay.Seq_ops
module Psort = Lcws_parlay.Sort
module Sample_sort = Lcws_parlay.Sample_sort
module Collect = Lcws_parlay.Collect
module Prandom = Lcws_parlay.Prandom

module Pbbs = struct
  module Suite_types = Lcws_pbbs.Suite_types
  module Suite = Lcws_pbbs.Suite
  module Graph = Lcws_pbbs.Graph
  module Geometry = Lcws_pbbs.Geometry
  module Text_gen = Lcws_pbbs.Text_gen
  module Tokens = Lcws_pbbs.Tokens
  module Integer_sort = Lcws_pbbs.Integer_sort
  module Comparison_sort = Lcws_pbbs.Comparison_sort
  module Histogram = Lcws_pbbs.Histogram
  module Word_counts = Lcws_pbbs.Word_counts
  module Inverted_index = Lcws_pbbs.Inverted_index
  module Remove_duplicates = Lcws_pbbs.Remove_duplicates
  module Suffix_array = Lcws_pbbs.Suffix_array
  module Bfs = Lcws_pbbs.Bfs
  module Maximal_independent_set = Lcws_pbbs.Maximal_independent_set
  module Maximal_matching = Lcws_pbbs.Maximal_matching
  module Spanning_forest = Lcws_pbbs.Spanning_forest
  module Convex_hull = Lcws_pbbs.Convex_hull
  module Nearest_neighbors = Lcws_pbbs.Nearest_neighbors
  module Nbody = Lcws_pbbs.Nbody
  module Ray_cast = Lcws_pbbs.Ray_cast
  module Classify = Lcws_pbbs.Classify
  module Lrs = Lcws_pbbs.Lrs
  module Bw_transform = Lcws_pbbs.Bw_transform
  module Range_query = Lcws_pbbs.Range_query
  module Delaunay = Lcws_pbbs.Delaunay
end

module Sim = struct
  module Cost_model = Lcws_sim.Cost_model
  module Comp = Lcws_sim.Comp
  module Engine = Lcws_sim.Engine
  module Workloads = Lcws_sim.Workloads
end

module Check = struct
  module Sim_atomic = Lcws_check.Sim_atomic
  module Explore = Lcws_check.Explore
  module Scenarios = Lcws_check.Scenarios
  module Sched_scenarios = Lcws_check.Sched_scenarios
  module Sched_model = Lcws_sched_model.Sched_model
end

module Harness = struct
  module Stats = Lcws_harness.Stats
  module Experiments = Lcws_harness.Experiments
  module Figures = Lcws_harness.Figures
  module Real_profile = Lcws_harness.Real_profile
  module Micro = Lcws_harness.Micro
end
