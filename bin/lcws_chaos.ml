(* Chaos CLI: seeded fault-injection runs against the real scheduler.

     lcws_chaos plans
     lcws_chaos run [--wseed S] [--plan PRESET|SPEC] [--variant V]
                    [--deque D] [--workers N] [-v]
     lcws_chaos sweep [--seeds N] [--start-seed S] [--plans a,b,c]
                      [--variants v1,v2] [--workers N] [--out FILE] [-v]

   [run] replays one case; its repro line is exactly what [sweep] prints
   for a failure, so a red CI job reduces to copying one line. --plan
   accepts a preset name or a Fault.plan_of_string spec such as
   "seed=7,drop=0.5,delay=0.3:6". [sweep] exits non-zero if any case in
   the matrix fails and writes the failing repro lines to --out. *)

module Chaos = Lcws.Chaos
module Fault = Lcws.Fault
module Scheduler = Lcws.Scheduler

let usage () =
  prerr_endline
    "usage: lcws_chaos plans\n\
    \       lcws_chaos run [--wseed S] [--plan PRESET|SPEC] [--variant V] [--deque D]\n\
    \                      [--workers N] [-v]\n\
    \       lcws_chaos sweep [--seeds N] [--start-seed S] [--plans a,b,c]\n\
    \                        [--variants v1,v2] [--workers N] [--out FILE] [-v]";
  exit 2

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let plan_arg ~seed s =
  match Fault.preset ~seed s with
  | Some p -> p
  | None -> (
      match Fault.plan_of_string s with
      | Ok p -> p
      | Error m -> die "--plan %S: not a preset (%s) and not a spec: %s" s
                     (String.concat "," Fault.preset_names) m)

let variant_arg s =
  match Scheduler.variant_of_string s with
  | Some v -> v
  | None -> die "unknown variant %S" s

let deque_arg s =
  match Scheduler.deque_impl_of_string s with
  | Some d -> d
  | None -> die "unknown deque %S" s

let plans_cmd () =
  List.iter
    (fun name ->
      match Fault.preset name with
      | Some p -> Printf.printf "%-8s %s\n" name (Fault.plan_to_string p)
      | None -> ())
    Fault.preset_names

let run_cmd args =
  let wseed = ref 1L and plan = ref "mixed" and variant = ref "signal" in
  let deque = ref None and workers = ref 4 and verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--wseed" :: s :: tl ->
        wseed := (match Int64.of_string_opt s with Some s -> s | None -> usage ());
        parse tl
    | "--plan" :: s :: tl -> plan := s; parse tl
    | "--variant" :: s :: tl -> variant := s; parse tl
    | "--deque" :: s :: tl -> deque := Some s; parse tl
    | "--workers" :: s :: tl ->
        workers := (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> usage ());
        parse tl
    | "-v" :: tl -> verbose := true; parse tl
    | _ -> usage ()
  in
  parse args;
  let variant = variant_arg !variant in
  let deque =
    match !deque with Some d -> deque_arg d | None -> Scheduler.default_deque_impl variant
  in
  let plan = plan_arg ~seed:!wseed !plan in
  let r = Chaos.run_one ~variant ~deque ~num_workers:!workers ~plan ~wseed:!wseed () in
  Format.printf "%a@." Chaos.pp_report r;
  if !verbose then begin
    Printf.printf "workload: %s\n" (Chaos.dag_stats (Chaos.gen_dag !wseed));
    Format.printf "%a@." Lcws.Metrics.pp r.Chaos.metrics
  end;
  if not (Chaos.ok r) then exit 1

let sweep_cmd args =
  let seeds = ref 10 and start_seed = ref 1L and workers = ref 4 in
  let plans = ref None and variants = ref None and out = ref None and verbose = ref false in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: s :: tl ->
        seeds := (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> usage ());
        parse tl
    | "--start-seed" :: s :: tl ->
        start_seed := (match Int64.of_string_opt s with Some s -> s | None -> usage ());
        parse tl
    | "--plans" :: s :: tl -> plans := Some (String.split_on_char ',' s); parse tl
    | "--variants" :: s :: tl -> variants := Some (String.split_on_char ',' s); parse tl
    | "--workers" :: s :: tl ->
        workers := (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> usage ());
        parse tl
    | "--out" :: s :: tl -> out := Some s; parse tl
    | "-v" :: tl -> verbose := true; parse tl
    | _ -> usage ()
  in
  parse args;
  let seeds = List.init !seeds (fun i -> Int64.add !start_seed (Int64.of_int i)) in
  let variants = Option.map (List.map variant_arg) !variants in
  let plans =
    Option.map
      (fun names -> List.map (fun n -> (n, plan_arg ~seed:0L n)) names)
      !plans
  in
  (* Named plans are re-seeded per workload seed inside the sweep only
     when defaulted; explicit --plans keep their given seeds, so replace
     the seed here per seed batch for the same coverage. *)
  let progress = if !verbose then print_endline else fun _ -> () in
  let cases = ref 0 in
  let progress line = incr cases; progress line in
  let failures =
    List.concat_map
      (fun wseed ->
        let plans =
          Option.map (List.map (fun (n, p) -> (n, { p with Fault.seed = wseed }))) plans
        in
        Lcws.Chaos.sweep ~num_workers:!workers ?variants ?plans ~progress ~seeds:[ wseed ] ())
      seeds
  in
  Printf.printf "chaos sweep: %d cases, %d failures\n" !cases (List.length failures);
  List.iter (fun r -> Format.printf "%a@." Chaos.pp_report r) failures;
  (match !out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      List.iter (fun (r : Chaos.report) -> output_string oc (r.Chaos.repro ^ "\n")) failures;
      close_out oc;
      if failures <> [] then Printf.printf "failing repro lines written to %s\n" path);
  if failures <> [] then exit 1

let () =
  match Array.to_list Sys.argv |> List.tl with
  | [ "plans" ] -> plans_cmd ()
  | "run" :: rest -> run_cmd rest
  | "sweep" :: rest -> sweep_cmd rest
  | _ -> usage ()
