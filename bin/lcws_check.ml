(* CLI for the interleaving checker (deque and scheduler levels).

     lcws_check list
     lcws_check run [scenario ...] [--mutants] [--budget N] [--preempt N]
                    [--trace-dir DIR]
     lcws_check replay <scenario> <schedule> [--out trace.json]

   [run] explores the named scenarios (default: both catalogues — raw
   deque scripts and the mini-scheduler protocol scenarios — plus, with
   --mutants, the seeded self-test mutants) and exits non-zero if any
   scenario's outcome does not match its expectation. [--preempt N]
   forces a preemption bound on every scenario (0 forces the unbounded
   sleep-set search, overriding the scheduler scenarios' default
   bounds); [--trace-dir DIR] re-executes each counterexample and drops
   it there as a Chrome trace, which CI uploads as an artifact.
   [replay] re-executes one exact interleaving — e.g. the schedule
   printed with a counterexample — and can export it likewise. *)

module Check = Lcws.Check

let usage () =
  prerr_endline
    "usage: lcws_check list\n\
    \       lcws_check run [scenario ...] [--mutants] [--budget N] [--preempt N]\n\
    \                      [--trace-dir DIR]\n\
    \       lcws_check replay <scenario> <schedule> [--out trace.json]";
  exit 2

let list_cmd () =
  let line (s : Check.Explore.scenario) =
    Printf.printf "%-28s %s%s\n" s.Check.Explore.name s.Check.Explore.descr
      (if s.Check.Explore.expect_violation then "  [expects violation]" else "")
  in
  print_endline "deque scenarios:";
  List.iter line Check.Scenarios.all;
  print_endline "scheduler scenarios (mini-scheduler over the real protocol kernels):";
  List.iter line Check.Sched_scenarios.all;
  print_endline "seeded mutants (self-test; each must yield a counterexample):";
  List.iter line Check.Scenarios.mutants;
  List.iter line Check.Sched_scenarios.mutants

let find name =
  match Check.Scenarios.find name with
  | Some _ as s -> s
  | None -> Check.Sched_scenarios.find name

let find_or_die name =
  match find name with
  | Some s -> s
  | None ->
      Printf.eprintf "unknown scenario %S (try `lcws_check list')\n" name;
      exit 2

(* Re-execute a counterexample and drop it as a Chrome trace named after
   the scenario, for chrome://tracing / Perfetto. *)
let dump_trace dir (s : Check.Explore.scenario) (v : Check.Explore.violation) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let rp = Check.Explore.replay s v.Check.Explore.schedule ~max_steps:1000 in
  let path = Filename.concat dir (s.Check.Explore.name ^ ".trace.json") in
  Lcws.Chrome_trace.Raw.write_file path
    (Check.Explore.steps_to_chrome ~lanes:rp.Check.Explore.lanes rp.Check.Explore.steps);
  Printf.printf "  trace: %s\n" path

let run_cmd names ~with_mutants ~budget ~preempt ~trace_dir =
  let scenarios =
    match names with
    | [] ->
        Check.Scenarios.all @ Check.Sched_scenarios.all
        @ (if with_mutants then Check.Scenarios.mutants @ Check.Sched_scenarios.mutants
           else [])
    | names -> List.map find_or_die names
  in
  let max_runs = Option.map (fun b -> b * Check.Explore.default_max_runs) budget in
  let ok = ref true in
  List.iter
    (fun (s : Check.Explore.scenario) ->
      let r = Check.Explore.explore ?max_runs ?preempt s in
      Format.printf "%a@." Check.Explore.pp_report r;
      (match (r.Check.Explore.violation, trace_dir) with
      | Some v, Some dir when not s.Check.Explore.expect_violation -> dump_trace dir s v
      | _ -> ());
      if not (Check.Explore.passed r) then ok := false)
    scenarios;
  if !ok then print_endline "all scenarios matched their expectations"
  else begin
    print_endline "MISMATCH: some scenario did not match its expectation";
    exit 1
  end

let replay_cmd name sched_str ~out =
  let scenario = find_or_die name in
  let schedule =
    try Check.Explore.schedule_of_string sched_str
    with Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  let r = Check.Explore.replay scenario schedule ~max_steps:1000 in
  List.iteri
    (fun i step ->
      Format.printf "%3d  %a@." i (Check.Explore.pp_step r.Check.Explore.lanes) step)
    r.Check.Explore.steps;
  (match r.Check.Explore.result with
  | Ok () -> print_endline "oracle: ok"
  | Error m -> Printf.printf "oracle: VIOLATION: %s\n" m);
  match out with
  | None -> ()
  | Some path ->
      Lcws.Chrome_trace.Raw.write_file path
        (Check.Explore.steps_to_chrome ~lanes:r.Check.Explore.lanes r.Check.Explore.steps);
      Printf.printf "wrote %s\n" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "list" ] -> list_cmd ()
  | "run" :: rest ->
      let rec parse names with_mutants budget preempt trace_dir = function
        | [] -> (List.rev names, with_mutants, budget, preempt, trace_dir)
        | "--mutants" :: tl -> parse names true budget preempt trace_dir tl
        | "--budget" :: n :: tl -> (
            match int_of_string_opt n with
            | Some b when b >= 1 -> parse names with_mutants (Some b) preempt trace_dir tl
            | _ -> usage ())
        | "--preempt" :: n :: tl -> (
            match int_of_string_opt n with
            | Some p -> parse names with_mutants budget (Some p) trace_dir tl
            | None -> usage ())
        | "--trace-dir" :: dir :: tl ->
            parse names with_mutants budget preempt (Some dir) tl
        | name :: tl -> parse (name :: names) with_mutants budget preempt trace_dir tl
      in
      let names, with_mutants, budget, preempt, trace_dir =
        parse [] false None None None rest
      in
      run_cmd names ~with_mutants ~budget ~preempt ~trace_dir
  | "replay" :: name :: sched :: rest ->
      let out = match rest with [] -> None | [ "--out"; path ] -> Some path | _ -> usage () in
      replay_cmd name sched ~out
  | _ -> usage ()
