(* CLI for the deque interleaving checker.

     lcws_check list
     lcws_check run [scenario ...] [--mutants] [--budget N]
     lcws_check replay <scenario> <schedule> [--out trace.json]

   [run] explores the named scenarios (default: the whole catalogue plus
   the seeded mutants) and exits non-zero if any scenario's outcome does
   not match its expectation. [replay] re-executes one exact interleaving
   — e.g. the schedule printed with a counterexample — and can export it
   as a Chrome trace for chrome://tracing / Perfetto. *)

module Check = Lcws.Check

let usage () =
  prerr_endline
    "usage: lcws_check list\n\
    \       lcws_check run [scenario ...] [--mutants] [--budget N]\n\
    \       lcws_check replay <scenario> <schedule> [--out trace.json]";
  exit 2

let list_cmd () =
  let line (s : Check.Explore.scenario) =
    Printf.printf "%-26s %s%s\n" s.Check.Explore.name s.Check.Explore.descr
      (if s.Check.Explore.expect_violation then "  [expects violation]" else "")
  in
  print_endline "scenarios:";
  List.iter line Check.Scenarios.all;
  print_endline "seeded mutants (self-test; each must yield a counterexample):";
  List.iter line Check.Scenarios.mutants

let find_or_die name =
  match Check.Scenarios.find name with
  | Some s -> s
  | None ->
      Printf.eprintf "unknown scenario %S (try `lcws_check list')\n" name;
      exit 2

let run_cmd names ~with_mutants ~budget =
  let scenarios =
    match names with
    | [] ->
        Check.Scenarios.all @ (if with_mutants then Check.Scenarios.mutants else [])
    | names -> List.map find_or_die names
  in
  let max_runs = Option.map (fun b -> b * Check.Explore.default_max_runs) budget in
  let ok = ref true in
  List.iter
    (fun s ->
      let r = Check.Explore.explore ?max_runs s in
      Format.printf "%a@." Check.Explore.pp_report r;
      if not (Check.Explore.passed r) then ok := false)
    scenarios;
  if !ok then print_endline "all scenarios matched their expectations"
  else begin
    print_endline "MISMATCH: some scenario did not match its expectation";
    exit 1
  end

let replay_cmd name sched_str ~out =
  let scenario = find_or_die name in
  let schedule =
    try Check.Explore.schedule_of_string sched_str
    with Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  let r = Check.Explore.replay scenario schedule ~max_steps:1000 in
  List.iteri
    (fun i step ->
      Format.printf "%3d  %a@." i (Check.Explore.pp_step r.Check.Explore.lanes) step)
    r.Check.Explore.steps;
  (match r.Check.Explore.result with
  | Ok () -> print_endline "oracle: ok"
  | Error m -> Printf.printf "oracle: VIOLATION: %s\n" m);
  match out with
  | None -> ()
  | Some path ->
      Lcws.Chrome_trace.Raw.write_file path
        (Check.Explore.steps_to_chrome ~lanes:r.Check.Explore.lanes r.Check.Explore.steps);
      Printf.printf "wrote %s\n" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "list" ] -> list_cmd ()
  | "run" :: rest ->
      let rec parse names with_mutants budget = function
        | [] -> (List.rev names, with_mutants, budget)
        | "--mutants" :: tl -> parse names true budget tl
        | "--budget" :: n :: tl -> (
            match int_of_string_opt n with
            | Some b when b >= 1 -> parse names with_mutants (Some b) tl
            | _ -> usage ())
        | name :: tl -> parse (name :: names) with_mutants budget tl
      in
      let names, with_mutants, budget = parse [] false None rest in
      run_cmd names ~with_mutants ~budget
  | "replay" :: name :: sched :: rest ->
      let out = match rest with [] -> None | [ "--out"; path ] -> Some path | _ -> usage () in
      replay_cmd name sched ~out
  | _ -> usage ()
