(* Command-line front end for the reproduction.

     lcws_bench list                      — benchmarks, instances, machines
     lcws_bench figure --n 5 [--scale S]  — one paper figure (or table/summary)
     lcws_bench sim ...                   — one simulated configuration
     lcws_bench real ...                  — one real-engine run with counters
     lcws_bench suite ...                 — whole PBBS-like suite, self-checked
     lcws_bench trace ...                 — steal/exposure latency percentiles
                                            for all five variants (+ Perfetto
                                            JSON export)

   The [--trace FILE] / [--trace-summary] options on `sim` and `real`
   record scheduler events (Chrome trace-event JSON, loadable in
   Perfetto / chrome://tracing). *)

open Cmdliner
module S = Lcws.Scheduler
module E = Lcws.Sim.Engine
module M = Lcws.Sim.Cost_model
module W = Lcws.Sim.Workloads
module T = Lcws.Pbbs.Suite_types
module Tr = Lcws.Trace

let ppf = Format.std_formatter

(* --- tracing options ---------------------------------------------------- *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record scheduler events and write Chrome trace-event JSON to $(docv).")

let trace_summary_arg =
  Arg.(
    value
    & flag
    & info [ "trace-summary" ]
        ~doc:"Record scheduler events and print counts plus latency percentiles.")

(* A live tracer when either option asks for one, [Trace.null] otherwise. *)
let make_trace ~file ~summary ~num_workers =
  if file <> None || summary then Tr.create ~num_workers () else Tr.null

let finish_trace ~file ~summary ~unit_name trace =
  if summary && Tr.enabled trace then begin
    Format.fprintf ppf "@.trace summary (latencies in %s):@." unit_name;
    Tr.summary ppf trace
  end;
  match file with
  | Some path when Tr.enabled trace ->
      Lcws.Chrome_trace.write_file path trace;
      Format.fprintf ppf "trace written to %s (open in Perfetto)@." path
  | _ -> ()

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let doc = "List benchmarks, input instances, machines and schedulers." in
  let run () =
    Format.fprintf ppf "Machines (simulated, Table 1):@.";
    List.iter (fun (m : M.t) -> Format.fprintf ppf "  %-8s %s@." m.M.name m.M.cpu) M.all;
    Format.fprintf ppf "@.Schedulers: ws uslcws signal cons half (+ sim-only: lace private)@.";
    Format.fprintf ppf "@.Real benchmark suite:@.";
    List.iter
      (fun (b : T.bench) ->
        Format.fprintf ppf "  %-24s %s@." b.T.bname
          (String.concat ", " (List.map (fun i -> i.T.iname) b.T.instances)))
      Lcws.Pbbs.Suite.all;
    Format.fprintf ppf "@.Simulator workload models:@.";
    List.iter (fun (c : W.config) -> Format.fprintf ppf "  %s/%s@." c.W.bench c.W.instance) W.all;
    Format.fprintf ppf "@.Microbench suite probes (bench/suite.exe; gates enforced by --validate):@.";
    Format.fprintf ppf "%a" Lcws_bench_probes.Probes.pp ()
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- figure ------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt float 0.5 & info [ "scale" ] ~docv:"S" ~doc:"Workload scale factor.")

let quantum_arg =
  Arg.(value & opt int 400 & info [ "quantum" ] ~docv:"Q" ~doc:"Sim work chunk (cycles).")

let figure_cmd =
  let doc = "Reproduce one of the paper's figures/tables." in
  let what =
    Arg.(
      value
      & opt string "all"
      & info [ "n"; "what" ] ~docv:"WHAT" ~doc:"table1|3|4|5|6|7|8|summary|ablation|all")
  in
  let run what scale quantum =
    let ctx = Lcws.Harness.Figures.make_ctx ~scale ~quantum ~progress:true () in
    match what with
    | "table1" -> Lcws.Harness.Figures.table1 ppf
    | "3" -> Lcws.Harness.Figures.fig3 ctx ppf
    | "4" -> Lcws.Harness.Figures.fig4 ctx ppf
    | "5" -> Lcws.Harness.Figures.fig5 ctx ppf
    | "6" -> Lcws.Harness.Figures.fig6 ctx ppf
    | "7" -> Lcws.Harness.Figures.fig7 ctx ppf
    | "8" -> Lcws.Harness.Figures.fig8 ctx ppf
    | "summary" -> Lcws.Harness.Figures.summary ctx ppf
    | "ablation" -> Lcws.Harness.Figures.ablation ctx ppf
    | "all" -> Lcws.Harness.Figures.all ctx ppf
    | other -> Format.fprintf ppf "unknown figure %S@." other
  in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run $ what $ scale_arg $ quantum_arg)

(* --- sim ---------------------------------------------------------------- *)

let sim_cmd =
  let doc = "Simulate one workload configuration under one policy." in
  let bench = Arg.(required & opt (some string) None & info [ "bench" ] ~docv:"B" ~doc:"Benchmark.") in
  let instance =
    Arg.(required & opt (some string) None & info [ "instance" ] ~docv:"I" ~doc:"Input instance.")
  in
  let policy = Arg.(value & opt string "signal" & info [ "policy" ] ~doc:"Scheduler policy.") in
  let machine = Arg.(value & opt string "AMD32" & info [ "machine" ] ~doc:"Machine model.") in
  let p = Arg.(value & opt int 8 & info [ "p" ] ~doc:"Worker count.") in
  let run bench instance policy machine p scale quantum trace_file trace_summary =
    match (W.find ~bench ~instance, E.policy_of_string policy, M.find machine) with
    | None, _, _ -> Format.fprintf ppf "unknown workload %s/%s@." bench instance
    | _, None, _ -> Format.fprintf ppf "unknown policy %s@." policy
    | _, _, None -> Format.fprintf ppf "unknown machine %s@." machine
    | Some c, Some policy, Some machine ->
        let comp = c.W.build ~scale in
        Format.fprintf ppf "work=%d span=%d leaves=%d@." (Lcws.Sim.Comp.total_work comp)
          (Lcws.Sim.Comp.span comp) (Lcws.Sim.Comp.num_leaves comp);
        let trace = make_trace ~file:trace_file ~summary:trace_summary ~num_workers:p in
        let s = E.run ~machine ~policy ~p ~quantum ~trace comp in
        Format.fprintf ppf
          "makespan=%d cycles@.fences=%d cas=%d steals=%d/%d exposed=%d taken_back=%d \
           signals=%d/%d tasks=%d idle=%d@."
          s.E.makespan s.E.fences s.E.cas s.E.steals s.E.steal_attempts s.E.exposed
          s.E.taken_back s.E.signals_sent s.E.signals_handled s.E.tasks s.E.idle_cycles;
        finish_trace ~file:trace_file ~summary:trace_summary ~unit_name:"model cycles" trace
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      const run $ bench $ instance $ policy $ machine $ p $ scale_arg $ quantum_arg
      $ trace_file_arg $ trace_summary_arg)

(* --- real ---------------------------------------------------------------- *)

let real_cmd =
  let doc = "Run one real benchmark on the multicore engine and print counters." in
  let bench = Arg.(required & opt (some string) None & info [ "bench" ] ~docv:"B" ~doc:"Benchmark.") in
  let instance =
    Arg.(required & opt (some string) None & info [ "instance" ] ~docv:"I" ~doc:"Input instance.")
  in
  let variant = Arg.(value & opt string "signal" & info [ "variant" ] ~doc:"Scheduler variant.") in
  let p = Arg.(value & opt int 4 & info [ "p" ] ~doc:"Worker count.") in
  let deque =
    Arg.(
      value
      & opt (some string) None
      & info [ "deque" ] ~docv:"D" ~doc:"Deque implementation: chase_lev|split|lace|private.")
  in
  let run bench instance variant p scale deque trace_file trace_summary =
    let deque_impl =
      match deque with
      | None -> Ok None
      | Some d -> (
          match S.deque_impl_of_string d with
          | Some i -> Ok (Some i)
          | None -> Error d)
    in
    match (Lcws.Pbbs.Suite.find ~bench ~instance, S.variant_of_string variant, deque_impl) with
    | None, _, _ -> Format.fprintf ppf "unknown benchmark %s/%s@." bench instance
    | _, None, _ -> Format.fprintf ppf "unknown variant %s@." variant
    | _, _, Error d -> Format.fprintf ppf "unknown deque %s@." d
    | Some inst, Some variant, Ok deque ->
        let prepared = inst.T.prepare ~scale in
        let trace = make_trace ~file:trace_file ~summary:trace_summary ~num_workers:p in
        let pool = S.Pool.create ?deque ~trace ~num_workers:p ~variant () in
        let t0 = Unix.gettimeofday () in
        S.Pool.run pool prepared.T.run;
        let dt = Unix.gettimeofday () -. t0 in
        let ok = prepared.T.check () in
        let m = S.Pool.metrics pool in
        S.Pool.shutdown pool;
        Format.fprintf ppf "%s/%s %s (%s deque) P=%d: %.3fs check=%s@.%a@." bench instance
          (S.variant_label variant) (S.Pool.deque_name pool) p dt
          (if ok then "OK" else "FAILED")
          Lcws.Metrics.pp m;
        if trace_summary then Format.fprintf ppf "metrics_json=%s@." (Lcws.Metrics.to_json m);
        finish_trace ~file:trace_file ~summary:trace_summary ~unit_name:"ns" trace
  in
  Cmd.v (Cmd.info "real" ~doc)
    Term.(
      const run $ bench $ instance $ variant $ p $ scale_arg $ deque $ trace_file_arg
      $ trace_summary_arg)

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let doc =
    "Run one real benchmark under all five scheduler variants with event tracing and report \
     steal / exposure / notify-to-steal handshake latency percentiles."
  in
  let bench =
    Arg.(value & opt string "integer_sort" & info [ "bench" ] ~docv:"B" ~doc:"Benchmark.")
  in
  let instance =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"I" ~doc:"Input instance (default: the benchmark's first).")
  in
  let p = Arg.(value & opt int 4 & info [ "p" ] ~doc:"Worker count.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:"Also write $(docv)_<variant>.json Chrome traces (open in Perfetto).")
  in
  let find_config ~bench ~instance =
    List.find_map
      (fun (b : T.bench) ->
        if b.T.bname <> bench then None
        else
          match instance with
          | None -> ( match b.T.instances with i :: _ -> Some (b, i) | [] -> None)
          | Some name -> (
              match List.find_opt (fun i -> i.T.iname = name) b.T.instances with
              | Some i -> Some (b, i)
              | None -> None))
      Lcws.Pbbs.Suite.all
  in
  let run bench instance p scale out =
    match find_config ~bench ~instance with
    | None ->
        Format.fprintf ppf "unknown benchmark configuration %s%s@." bench
          (match instance with None -> "" | Some i -> "/" ^ i)
    | Some (b, inst) ->
        Format.fprintf ppf "%s/%s P=%d scale=%.2f — latencies in ns@." b.T.bname inst.T.iname p
          scale;
        List.iter
          (fun variant ->
            let trace = Tr.create ~num_workers:p () in
            let r =
              Lcws.Harness.Real_profile.run_config ~trace ~variant ~p ~scale b inst
            in
            let l = Tr.latencies trace in
            Format.fprintf ppf "@.%-7s %.3fs check=%s@." (S.variant_label variant) r.seconds
              (if r.checked then "OK" else "FAILED");
            Format.fprintf ppf "  steal     %a@." Lcws.Histogram.pp l.Tr.steal;
            Format.fprintf ppf "  expose    %a@." Lcws.Histogram.pp l.Tr.expose;
            Format.fprintf ppf "  handshake %a@." Lcws.Histogram.pp l.Tr.handshake;
            match out with
            | None -> ()
            | Some prefix ->
                let path = Printf.sprintf "%s_%s.json" prefix (S.variant_name variant) in
                Lcws.Chrome_trace.write_file path trace;
                Format.fprintf ppf "  trace written to %s@." path)
          S.all_variants
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ bench $ instance $ p $ scale_arg $ out)

(* --- suite --------------------------------------------------------------- *)

let suite_cmd =
  let doc = "Run the whole PBBS-like suite on the real engine, self-checking each result." in
  let variant = Arg.(value & opt string "signal" & info [ "variant" ] ~doc:"Scheduler variant.") in
  let p = Arg.(value & opt int 4 & info [ "p" ] ~doc:"Worker count.") in
  let run variant p scale =
    match S.variant_of_string variant with
    | None -> Format.fprintf ppf "unknown variant %s@." variant
    | Some variant ->
        let pool = S.Pool.create ~num_workers:p ~variant () in
        let failures = ref 0 in
        List.iter
          (fun (b : T.bench) ->
            List.iter
              (fun (i : T.instance) ->
                let prepared = i.T.prepare ~scale in
                let t0 = Unix.gettimeofday () in
                S.Pool.run pool prepared.T.run;
                let dt = Unix.gettimeofday () -. t0 in
                let ok = prepared.T.check () in
                if not ok then incr failures;
                Format.fprintf ppf "%-24s %-28s %s %6.2fs@." b.T.bname i.T.iname
                  (if ok then "OK  " else "FAIL")
                  dt)
              b.T.instances)
          Lcws.Pbbs.Suite.all;
        S.Pool.shutdown pool;
        Format.fprintf ppf "@.%s@."
          (if !failures = 0 then "all checks passed" else Printf.sprintf "%d FAILURES" !failures);
        if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "suite" ~doc) Term.(const run $ variant $ p $ scale_arg)

let () =
  let doc = "Synchronization-light work stealing (SPAA '23) — reproduction tools" in
  let info = Cmd.info "lcws_bench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; figure_cmd; sim_cmd; real_cmd; trace_cmd; suite_cmd ]))
