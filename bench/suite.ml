(* Reproducible microbenchmark suite for the scheduler hot paths.

   Where bench/main.exe regenerates the paper's simulator figures, this
   executable measures the *real* multi-domain engine: fork/join cost
   (ns/op and minor words/op — the quantity the per-worker frame pool
   exists to shrink), parallel_for throughput under lazy binary
   splitting, reduce and scan throughput through the Parlay layer, and a
   steal-heavy skewed spawn chain — plus an idle-CPU probe that proves
   a quiet pool parks on its doorbell instead of spinning (the
   [--validate] schema check enforces its near-zero idle-loop budget),
   a steal_heavy_skew A/B pair (steal-one vs steal-half on a deep
   spawn burst; the validator demands batched episodes on the batched
   row and none on the pinned steal-one row), and a deterministic
   simulator cache-miss sweep (uniform vs near-first victim selection
   on a clustered 16-worker machine; the validator demands near-first
   pay strictly less modeled miss cost).
   Each bench sweeps scheduler variant x
   deque implementation x worker count and appends one JSON record; the
   whole run is dumped as a single machine-readable file (default
   BENCH_PR4.json, schema "lcws-bench-suite/2") so runs can be diffed
   across commits.

   The elastic-pool addition: a load_spike probe whose workload
   alternates quiet serial phases with wide steal bursts, run on the
   two static extremes (Uslcws, Signal) and on an adaptive pool
   ([Pool.create ~adaptive:true]) at P=2 and P=8. The [--validate]
   gate demands the adaptive rows land within 5% of the better static
   variant at both parallelism levels — adaptivity must not lose to
   either static choice it arbitrates between.

   Usage: dune exec bench/suite.exe -- [options]
     --out PATH      output file (default BENCH_PR4.json)
     --quick         tiny sizes: smoke-test the suite itself (CI)
     --workers N     worker count for the parallel configurations
                     (default 2)
     --list          enumerate the probes (and their --validate gates)
                     and exit
     --validate FILE parse FILE and check it against the schema instead
                     of running benchmarks; print every violated gate
                     and exit 1 on violation *)

module S = Lcws_sched.Scheduler
module Metrics = Lcws_sync.Metrics
module P = Lcws_parlay.Seq_ops

(* {1 Measurement} *)

type sample = {
  bench : string;
  variant : S.variant;
  deque : S.deque_impl;
  workers : int;
  ops : int; (* unit of account: joins, iterations, elements... *)
  elapsed_ns : float;
  minor_words : float;
  metrics : Metrics.t;
}

(* One timed configuration: a fresh pool per sample keeps deque capacity
   and frame pools cold-start-comparable across variants; [job] runs
   once untimed to warm frame pools and code paths, then [reps] timed
   runs are summed. The steal knobs default to the pool's own defaults;
   the steal_heavy_skew A/B pair pins them explicitly. *)
let run_config ~bench ?steal_policy ?topology ?steal_batch ?adaptive ?adaptive_config ~variant
    ~deque ~workers ~ops ~reps job =
  let pool =
    S.Pool.create ?steal_policy ?topology ?steal_batch ?adaptive ?adaptive_config
      ~num_workers:workers ~variant ~deque ()
  in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      S.Pool.run pool job;
      S.Pool.reset_metrics pool;
      let w0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        S.Pool.run pool job
      done;
      let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps in
      let minor_words = (Gc.minor_words () -. w0) /. float_of_int reps in
      {
        bench;
        variant;
        deque;
        workers;
        ops;
        elapsed_ns;
        minor_words;
        metrics = S.Pool.metrics pool;
      })

(* {1 The benchmarks} *)

let noop () = ()

(* Allocation-light fork/join: a chain of un-stolen joins on worker 0.
   ns/op and minor words/op are the headline numbers of the frame
   pool. *)
let bench_fork_join ~calls ~variant ~deque ~workers =
  run_config ~bench:"fork_join" ~variant ~deque ~workers ~ops:calls ~reps:3 (fun () ->
      for _ = 1 to calls do
        S.Ops.fork_join_unit noop noop
      done)

(* Lazy-split loop over a trivial body: throughput in iterations/s, and
   the split/push counters show the task-creation collapse. *)
let bench_parallel_for ~n ~variant ~deque ~workers =
  let acc = Array.make 64 0 in
  run_config ~bench:"parallel_for" ~variant ~deque ~workers ~ops:n ~reps:3 (fun () ->
      S.Ops.parallel_for ~grain:256 ~start:0 ~stop:n (fun i ->
          let slot = i land 63 in
          acc.(slot) <- acc.(slot) + i))

let bench_reduce ~n ~variant ~deque ~workers =
  let a = Array.init n (fun i -> float_of_int (i land 1023) *. 0.5) in
  run_config ~bench:"reduce" ~variant ~deque ~workers ~ops:n ~reps:3 (fun () ->
      ignore (Sys.opaque_identity (P.reduce ( +. ) 0. a)))

let bench_scan ~n ~variant ~deque ~workers =
  let a = Array.init n (fun i -> i land 255) in
  run_config ~bench:"scan" ~variant ~deque ~workers ~ops:n ~reps:3 (fun () ->
      ignore (Sys.opaque_identity (P.scan ( + ) 0 a)))

(* Steal-heavy skew: the left branch is a leaf, the right branch carries
   the whole remaining chain, so helpers make progress only by stealing
   — the exposure handshake runs constantly. *)
let rec skew_chain depth =
  if depth > 0 then
    S.Ops.fork_join_unit (fun () -> ignore (Sys.opaque_identity depth)) (fun () -> skew_chain (depth - 1))

let bench_steal_heavy ~depth ~variant ~deque ~workers =
  run_config ~bench:"steal_heavy" ~variant ~deque ~workers ~ops:depth ~reps:3 (fun () ->
      skew_chain depth)

(* Steal-half showcase: the root spawns wide bursts of uneven leaf
   fibers, so its deque runs ~[width] deep while every helper starts
   empty — the shape one batched episode can rebalance with a single
   claim run instead of [width] full steal round-trips. The same
   workload runs twice, [~steal_batch:1] (classical steal-one) and
   [~steal_batch:8]; diffing the two rows' ns/op and batch counters is
   the real-engine half of the EXPERIMENTS.md A/B recipe. The
   [--validate] gate pins the counters' shape: the batched row must
   record [steals_batched > 0] (and extras on top of its episodes), the
   steal-one row must record none. *)
let rec skew_leaf n = if n < 2 then n else skew_leaf (n - 1) + skew_leaf (n - 2)

let bench_steal_heavy_skew ~bursts ~steal_batch ~variant ~deque ~workers =
  let width = 64 in
  let bench = if steal_batch = 1 then "steal_heavy_skew_steal1" else "steal_heavy_skew" in
  run_config ~bench ~steal_batch ~variant ~deque ~workers ~ops:(bursts * width) ~reps:3
    (fun () ->
      for _ = 1 to bursts do
        (* Leaves in the microseconds range: heavy enough that the
           burst outlives a helper's wake-up, so thieves see a deep
           deque instead of the owner's leftovers. *)
        let futs =
          List.init width (fun i -> S.Future.spawn (fun () -> skew_leaf (15 + (i mod 6))))
        in
        List.iter (fun f -> ignore (Sys.opaque_identity (S.Future.await f))) futs
      done)

(* Load-spike A/B: the workload the elastic pool exists for. Each
   round is a quiet phase (one serial grind only the owner advances —
   steal pressure collapses, helpers park) followed by a spike (a wide
   burst of leaf futures — every helper wakes and steals). A static
   pool must pick one exposure discipline for both phases; the
   adaptive pool's governor watches the already-counted steal-rate and
   parked-count metrics and flips per-phase. The [--validate] gate
   demands the adaptive rows stay within 5% of whichever static
   variant wins at each P — the elastic pool must never lose to the
   choice it automates. Same-shaped rows, distinguished by bench name
   ("load_spike" static, "load_spike_adaptive" elastic). *)
let bench_load_spike ~spikes ~adaptive ~variant ~workers =
  let width = 32 in
  let bench = if adaptive then "load_spike_adaptive" else "load_spike" in
  let deque = S.default_deque_impl variant in
  (* A snappier, stickier governor than the library default: sample
     every 64 owner poll points instead of 256 so the pool converges
     inside the warm run, smooth harder (the phases here are much
     shorter than an epoch, so per-epoch pressure is spiky), and drop
     [lo] so a run of quiet epochs doesn't flap it back to unsync. *)
  let adaptive_config =
    Lcws_sched.Policy_governor.{ default_config with alpha = 0.1; lo = 0.005; epoch = 64 }
  in
  run_config ~bench ~adaptive ~adaptive_config ~variant ~deque ~workers
    ~ops:(spikes * (width + 1)) ~reps:5
    (fun () ->
      for _ = 1 to spikes do
        (* Quiet phase: sequential, microseconds — long enough for the
           governor's epoch to observe the calm. *)
        ignore (Sys.opaque_identity (skew_leaf 18));
        (* Spike: a burst of uneven leaves; steal pressure jumps. *)
        let futs =
          List.init width (fun i -> S.Future.spawn (fun () -> skew_leaf (10 + (i mod 5))))
        in
        List.iter (fun f -> ignore (Sys.opaque_identity (S.Future.await f))) futs
      done)

(* Fiber suspension: a chain of spawn+await pairs at the root, each one
   a full park — capture, one-shot resume, continuation re-run. ns/op
   prices the Suspend/resume handshake itself. *)
let bench_future ~calls ~variant ~deque ~workers =
  run_config ~bench:"future" ~variant ~deque ~workers ~ops:calls ~reps:3 (fun () ->
      for i = 1 to calls do
        ignore (Sys.opaque_identity (S.Future.await (S.Future.spawn (fun () -> i))))
      done)

(* External submission: the bench thread feeds the pool through the
   MPSC injector in batches and awaits each batch, with no Pool.run in
   flight — the service count keeps helpers serving, and at P=1 the
   awaiting thread elects itself driver of worker 0. ns/op prices
   inject + drain + fiber run + external wakeup. Not a [run_config]
   job: the whole point is running *outside* the pool. *)
let bench_submit ~calls ~batch ~variant ~deque ~workers =
  let pool = S.Pool.create ~num_workers:workers ~variant ~deque () in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      let job () =
        let rec go k =
          if k < calls then begin
            let b = min batch (calls - k) in
            let futs = List.init b (fun i -> S.Pool.submit pool (fun () -> k + i)) in
            List.iter (fun fu -> ignore (Sys.opaque_identity (S.Future.await fu))) futs;
            go (k + b)
          end
        in
        go 0
      in
      job ();
      S.Pool.reset_metrics pool;
      let w0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      let reps = 3 in
      for _ = 1 to reps do
        job ()
      done;
      let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps in
      let minor_words = (Gc.minor_words () -. w0) /. float_of_int reps in
      {
        bench = "submit";
        variant;
        deque;
        workers;
        ops = calls;
        elapsed_ns;
        minor_words;
        metrics = S.Pool.metrics pool;
      })

(* Idle-CPU probe: workers inside an active but quiet job must park on
   the pool's doorbell, not spin. The root sleeps through a settling
   pause (helpers saturate their backoff and enter the lot), then sleeps
   through the measured window; both snapshots are taken *inside* the
   job, before the end-of-job doorbell wakes everyone for one more
   fruitless search. The reported [idle_loops] is rewritten to the
   window-only delta (so the settle phase's bounded backoff spinning is
   excluded) while [parks] stays cumulative — the validator wants proof
   the helpers actually parked. Headline number: window idle_loops, ~0
   with parking, millions/s under the old saturated-backoff sleep loop.
   [ops] is the window in milliseconds so the derived per-op fields
   stay finite. *)
let bench_idle_cpu ~window_ms ~variant ~deque ~workers =
  let pool = S.Pool.create ~num_workers:workers ~variant ~deque () in
  Fun.protect
    ~finally:(fun () -> S.Pool.shutdown pool)
    (fun () ->
      let snap = ref (Metrics.create ()) in
      let elapsed = ref 0. in
      S.Pool.run pool (fun () ->
          Unix.sleepf 0.2;
          let before = S.Pool.metrics pool in
          let t0 = Unix.gettimeofday () in
          Unix.sleepf (float_of_int window_ms /. 1000.);
          elapsed := Unix.gettimeofday () -. t0;
          let after = S.Pool.metrics pool in
          after.Metrics.idle_loops <- after.Metrics.idle_loops - before.Metrics.idle_loops;
          snap := after);
      {
        bench = "idle_cpu";
        variant;
        deque;
        workers;
        ops = window_ms;
        elapsed_ns = !elapsed *. 1e9;
        minor_words = 0.;
        metrics = !snap;
      })

(* {1 Simulator cache-miss sweep}

   The deterministic counterpart of the skew bench: one clustered
   16-worker machine, uniform vs near-first victim selection crossed
   with steal-one vs steal-half, all on the same seeded balanced DAG.
   Every quantity is model cycles from a deterministic run, so the
   "near-first pays less cache-miss cost than uniform" inequality is a
   hard [--validate] gate, not a statistical one. *)

module Sim = Lcws_sim
module Victim_policy = Lcws_sync.Victim_policy

type sim_row = {
  sim_steal_policy : Victim_policy.policy;
  sim_steal_batch : int;
  sim_stats : Sim.Engine.stats;
}

(* The Chase-Lev baseline keeps the whole deque stealable, so the
   steal-half rule actually gets [avail / 2 >= 2] episodes to batch —
   the exposure-based policies cap [avail] at the few exposed tasks and
   would make the batch column trivially zero. *)
let sim_sweep_policy = Sim.Engine.Ws

let sim_sweep ~quick =
  let machine = Sim.Cost_model.intel16 in
  let p = 16 in
  let topology = Victim_policy.clustered ~far:4 ~cluster:4 p in
  let leaves = if quick then 512 else 4096 in
  let comp = Sim.Comp.balanced ~leaves ~leaf_work:400 in
  List.concat_map
    (fun sim_steal_batch ->
      List.map
        (fun sim_steal_policy ->
          let sim_stats =
            Sim.Engine.run ~machine ~policy:sim_sweep_policy ~p ~topology
              ~steal_policy:sim_steal_policy ~steal_batch:sim_steal_batch comp
          in
          { sim_steal_policy; sim_steal_batch; sim_stats })
        Victim_policy.all_policies)
    [ 1; 8 ]

(* {1 JSON emission} *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sample_to_json s =
  let ops_f = float_of_int s.ops in
  Printf.sprintf
    "    {\"bench\": %S, \"variant\": %S, \"deque\": %S, \"workers\": %d, \"ops\": %d,\n\
    \     \"ns_per_op\": %.3f, \"minor_words_per_op\": %.3f, \"items_per_s\": %.1f,\n\
    \     \"metrics\": %s}"
    s.bench (S.variant_name s.variant) (S.deque_impl_name s.deque) s.workers s.ops
    (s.elapsed_ns /. ops_f)
    (s.minor_words /. ops_f)
    (ops_f /. (s.elapsed_ns /. 1e9))
    (Metrics.to_json s.metrics)

let sim_row_to_json r =
  let s = r.sim_stats in
  Printf.sprintf
    "    {\"machine\": %S, \"policy\": %S, \"steal_policy\": %S, \"steal_batch\": %d,\n\
    \     \"makespan\": %d, \"steals\": %d, \"steals_batched\": %d, \"tasks_migrated\": %d,\n\
    \     \"near_steals\": %d, \"far_steals\": %d, \"cache_miss_cost\": %d}"
    Sim.Cost_model.intel16.Sim.Cost_model.name
    (Sim.Engine.policy_name sim_sweep_policy)
    (Victim_policy.policy_name r.sim_steal_policy)
    r.sim_steal_batch s.Sim.Engine.makespan s.steals s.steals_batched s.tasks_migrated
    s.near_steals s.far_steals s.cache_miss_cost

let suite_to_json ~quick samples sim_rows =
  let b = Buffer.create 16384 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"lcws-bench-suite/2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b
    (Printf.sprintf
       "  \"host\": {\"ocaml\": \"%s\", \"word_size\": %d, \"recommended_domains\": %d, \"os_type\": \"%s\"},\n"
       (json_escape Sys.ocaml_version) Sys.word_size
       (Domain.recommended_domain_count ())
       (json_escape Sys.os_type));
  Buffer.add_string b "  \"sim_cache_miss\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map sim_row_to_json sim_rows));
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"results\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map sample_to_json samples));
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* {1 Validation: a minimal JSON reader}

   Just enough JSON to load the suite's own output back and check the
   schema contract; strings with escapes, numbers, bools, null, arrays,
   objects. Used by --validate (the CI smoke job). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Malformed of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
    let literal lit v =
      if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
        pos := !pos + String.length lit;
        v
      end
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                (* Keep the raw escape; the validator never inspects
                   non-ASCII content. *)
                Buffer.add_string b (String.sub s (!pos - 1) 6);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  items (v :: acc)
              | ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            items []
          end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* The schema contract the CI smoke job enforces: schema id, every
   variant present in the fork_join bench, and each result carrying the
   required well-typed fields. Every violation is tagged with the gate
   it belongs to and printed before the non-zero exit, so a CI failure
   names the broken contract in the log instead of requiring a read of
   the JSON artifact. *)
let validate path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let errors = ref [] in
  let err gate fmt = Printf.ksprintf (fun m -> errors := (gate, m) :: !errors) fmt in
  (match Json.parse raw with
  | exception Json.Malformed m -> err "json" "not valid JSON: %s" m
  | json -> (
      (match Json.member "schema" json with
      | Some (Json.Str "lcws-bench-suite/2") -> ()
      | _ -> err "schema" "missing or wrong \"schema\" (want \"lcws-bench-suite/2\")");
      (match Json.member "host" json with
      | Some (Json.Obj _) -> ()
      | _ -> err "schema" "missing \"host\" object");
      (* The steal-half acceptance bar on the simulator: for both batch
         settings, near-first victim selection must pay strictly less
         modeled cache-miss cost than uniform on the clustered machine,
         and the steal-half rows must actually batch. Deterministic
         seeded runs make these hard inequalities. *)
      (match Json.member "sim_cache_miss" json with
      | Some (Json.List rows) ->
          let num k r = match Json.member k r with Some (Json.Num f) -> Some f | _ -> None in
          let find sp b =
            List.find_opt
              (fun r ->
                Json.member "steal_policy" r = Some (Json.Str sp)
                && num "steal_batch" r = Some (float_of_int b))
              rows
          in
          List.iter
            (fun b ->
              match (find "uniform" b, find "near_first" b) with
              | Some u, Some nf -> (
                  (match (num "cache_miss_cost" u, num "cache_miss_cost" nf) with
                  | Some cu, Some cn ->
                      if cn >= cu then
                        err "sim-cache-miss"
                          "sim sweep (batch %d): near_first miss cost %.0f not below uniform %.0f"
                          b cn cu
                  | _ -> err "sim-cache-miss" "sim sweep (batch %d): rows lack \"cache_miss_cost\"" b);
                  if b > 1 then
                    List.iter
                      (fun (name, r) ->
                        match num "steals_batched" r with
                        | Some sb when sb >= 1. -> ()
                        | _ -> err "sim-cache-miss" "sim sweep (batch %d, %s): no batched episodes" b name)
                      [ ("uniform", u); ("near_first", nf) ])
              | _ -> err "sim-cache-miss" "sim sweep: missing uniform/near_first pair for batch %d" b)
            [ 1; 8 ]
      | _ -> err "sim-cache-miss" "missing \"sim_cache_miss\" array");
      match Json.member "results" json with
      | Some (Json.List results) ->
          if results = [] then err "schema" "empty \"results\"";
          List.iteri
            (fun i r ->
              List.iter
                (fun k ->
                  match Json.member k r with
                  | Some (Json.Num _) -> ()
                  | _ -> err "schema" "result %d: missing numeric %S" i k)
                [ "workers"; "ops"; "ns_per_op"; "minor_words_per_op"; "items_per_s" ];
              List.iter
                (fun k ->
                  match Json.member k r with
                  | Some (Json.Str _) -> ()
                  | _ -> err "schema" "result %d: missing string %S" i k)
                [ "bench"; "variant"; "deque" ];
              match Json.member "metrics" r with
              | Some (Json.Obj _) -> ()
              | _ -> err "schema" "result %d: missing \"metrics\" object" i)
            results;
          List.iter
            (fun v ->
              let name = S.variant_name v in
              let covered bench =
                List.exists
                  (fun r ->
                    Json.member "bench" r = Some (Json.Str bench)
                    && Json.member "variant" r = Some (Json.Str name))
                  results
              in
              if not (covered "fork_join") then err "coverage" "variant %S has no fork_join result" name;
              if not (covered "idle_cpu") then err "coverage" "variant %S has no idle_cpu result" name;
              if not (covered "steal_heavy_skew") then
                err "coverage" "variant %S has no steal_heavy_skew result" name;
              if not (covered "steal_heavy_skew_steal1") then
                err "coverage" "variant %S has no steal_heavy_skew_steal1 result" name)
            S.all_variants;
          (* The parking acceptance bar: during an idle_cpu probe's
             quiet window every idle worker must be parked, so the
             pool-wide idle-loop count stays near zero (the pre-parking
             spin loop clocked millions per second here). The bound is
             loose — a few late parkers may each run a handful of
             search rounds — but catches any regression to spinning. *)
          List.iteri
            (fun i r ->
              if Json.member "bench" r = Some (Json.Str "idle_cpu") then
                match Json.member "metrics" r with
                | Some m -> (
                    (match Json.member "idle_loops" m with
                    | Some (Json.Num loops) ->
                        if loops > 2000. then
                          err "idle-cpu" "result %d: idle_cpu probe spun (%.0f idle loops in the quiet window)" i
                            loops
                    | _ -> err "idle-cpu" "result %d: idle_cpu metrics lack \"idle_loops\"" i);
                    match Json.member "parks" m with
                    | Some (Json.Num parks) ->
                        if parks < 1. then err "idle-cpu" "result %d: idle_cpu probe recorded no parks" i
                    | _ -> err "idle-cpu" "result %d: idle_cpu metrics lack \"parks\"" i)
                | None -> ())
            results;
          (* The steal-half acceptance bar on the real engine. Per-row:
             conservation (a batched episode contributes its extras on
             top of the per-episode count), and the pinned steal-one
             rows must never batch — their migration count collapses to
             the episode count. In aggregate across the batched skew
             rows: some episode actually moved more than one task
             (per-variant floors would be flaky on a time-sliced
             single-core host, where a given variant's helpers may
             never win a deep probe, but across all five variants the
             burst shape batches reliably). *)
          let skew_steals = ref 0. and skew_batched = ref 0. and skew_migrated = ref 0. in
          List.iteri
            (fun i r ->
              let metric k =
                match Json.member "metrics" r with
                | Some m -> ( match Json.member k m with Some (Json.Num f) -> Some f | _ -> None)
                | None -> None
              in
              match (Json.member "bench" r, metric "steals", metric "steals_batched",
                     metric "tasks_migrated")
              with
              | Some (Json.Str "steal_heavy_skew"), Some steals, Some batched, Some migrated ->
                  skew_steals := !skew_steals +. steals;
                  skew_batched := !skew_batched +. batched;
                  skew_migrated := !skew_migrated +. migrated;
                  if migrated < steals +. batched then
                    err "steal-batch" "result %d: steal_heavy_skew migrated %.0f < episodes %.0f + batched %.0f"
                      i migrated steals batched
              | Some (Json.Str "steal_heavy_skew_steal1"), Some steals, Some batched,
                Some migrated ->
                  if batched <> 0. then
                    err "steal-batch" "result %d: steal_heavy_skew_steal1 batched %.0f episodes with ~steal_batch:1"
                      i batched;
                  if migrated <> steals then
                    err "steal-batch" "result %d: steal_heavy_skew_steal1 migrated %.0f over %.0f episodes" i
                      migrated steals
              | _ -> ())
            results;
          if !skew_batched < 1. then
            err "steal-batch" "steal_heavy_skew rows recorded no batched episodes anywhere";
          if not (!skew_migrated > !skew_steals) then
            err "steal-batch" "steal_heavy_skew rows migrated %.0f tasks over %.0f episodes (no batch gain)"
              !skew_migrated !skew_steals;
          (* The elastic-pool acceptance bar: at each parallelism level
             the adaptive pool must keep within 5% of whichever static
             exposure policy wins the load-spike workload there. The
             point of online switching is to not have to pick a policy
             per machine/load; losing to the better static pick by more
             than the tolerance means the governor is flapping or stuck.
             Quick runs get a looser bar (0.75): their samples are a few
             milliseconds each, and on a time-sliced CI host a single
             preemption inside one swings the ratio by more than 5% —
             the smoke gate only has to catch an adaptive pool that is
             catastrophically slower than both static choices. *)
          let tolerance =
            match Json.member "quick" json with Some (Json.Bool true) -> 0.75 | _ -> 0.95
          in
          List.iter
            (fun p ->
              let throughput bench =
                List.filter_map
                  (fun r ->
                    if
                      Json.member "bench" r = Some (Json.Str bench)
                      && Json.member "workers" r = Some (Json.Num (float_of_int p))
                    then
                      match Json.member "items_per_s" r with Some (Json.Num f) -> Some f | _ -> None
                    else None)
                  results
              in
              match (throughput "load_spike", throughput "load_spike_adaptive") with
              | [], _ -> err "load-spike" "no static load_spike rows at workers=%d" p
              | _, [] -> err "load-spike" "no load_spike_adaptive row at workers=%d" p
              | statics, adaptives ->
                  let best = List.fold_left max neg_infinity statics in
                  let adaptive = List.fold_left max neg_infinity adaptives in
                  if adaptive < tolerance *. best then
                    err "load-spike"
                      "workers=%d: adaptive %.0f items/s < %.2f x best static %.0f items/s" p
                      adaptive tolerance best)
            [ 2; 8 ]
      | _ -> err "schema" "missing \"results\" array"));
  match List.rev !errors with
  | [] ->
      Printf.printf "%s: valid (schema lcws-bench-suite/2)\n" path;
      0
  | es ->
      List.iter (fun (gate, m) -> Printf.eprintf "%s: [gate %s] %s\n" path gate m) es;
      let gates = List.sort_uniq compare (List.map fst es) in
      Printf.eprintf "%s: validation FAILED — %d violation(s) in gate(s): %s\n" path
        (List.length es) (String.concat ", " gates);
      1

(* {1 Driver} *)

let concurrent_impls = [ S.chase_lev_impl; S.split_deque_impl ]

let () =
  let out = ref "BENCH_PR4.json" in
  let quick = ref false in
  let workers = ref 2 in
  let validate_path = ref None in
  let list_probes = ref false in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
        list_probes := true;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--workers" :: v :: rest ->
        workers := max 2 (int_of_string v);
        parse rest
    | "--validate" :: path :: rest ->
        validate_path := Some path;
        parse rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_probes then begin
    Format.printf "Suite probes:@.%a" Lcws_bench_probes.Probes.pp ();
    exit 0
  end;
  match !validate_path with
  | Some path -> exit (validate path)
  | None ->
      let q = !quick in
      let w = !workers in
      let fj_calls = if q then 5_000 else 200_000 in
      let loop_n = if q then 50_000 else 2_000_000 in
      let reduce_n = if q then 50_000 else 1_000_000 in
      let scan_n = if q then 20_000 else 500_000 in
      let skew_depth = if q then 2_000 else 20_000 in
      let skew_bursts = if q then 10 else 100 in
      let fut_calls = if q then 2_000 else 50_000 in
      let submit_calls = if q then 1_000 else 20_000 in
      let idle_window_ms = if q then 250 else 500 in
      let t0 = Unix.gettimeofday () in
      let samples = ref [] in
      let note s = samples := s :: !samples in
      List.iter
        (fun variant ->
          Printf.printf "[%s]%!" (S.variant_name variant);
          (* fork_join is the deque-sensitive hot path: sweep every
             implementation at P=1 (the sequential specifications
             included) and the concurrent ones at P=w. *)
          List.iter
            (fun deque -> note (bench_fork_join ~calls:fj_calls ~variant ~deque ~workers:1))
            S.all_deque_impls;
          List.iter
            (fun deque -> note (bench_fork_join ~calls:fj_calls ~variant ~deque ~workers:w))
            concurrent_impls;
          Printf.printf " fork_join%!";
          (* The remaining benches run on the variant's default deque. *)
          let deque = S.default_deque_impl variant in
          List.iter
            (fun workers ->
              note (bench_parallel_for ~n:loop_n ~variant ~deque ~workers);
              note (bench_reduce ~n:reduce_n ~variant ~deque ~workers);
              note (bench_scan ~n:scan_n ~variant ~deque ~workers))
            [ 1; w ];
          Printf.printf " loops%!";
          note (bench_steal_heavy ~depth:skew_depth ~variant ~deque ~workers:w);
          note (bench_steal_heavy_skew ~bursts:skew_bursts ~steal_batch:1 ~variant ~deque ~workers:w);
          note (bench_steal_heavy_skew ~bursts:skew_bursts ~steal_batch:8 ~variant ~deque ~workers:w);
          Printf.printf " steal_heavy%!";
          note (bench_future ~calls:fut_calls ~variant ~deque ~workers:w);
          List.iter
            (fun workers -> note (bench_submit ~calls:submit_calls ~batch:64 ~variant ~deque ~workers))
            [ 1; w ];
          Printf.printf " futures%!";
          note (bench_idle_cpu ~window_ms:idle_window_ms ~variant ~deque ~workers:w);
          Printf.printf " idle_cpu\n%!")
        S.all_variants;
      (* The elastic-pool A/B: the same quiet/burst phases on the two
         static exposure policies and on an adaptive Uslcws pool, at
         low and high parallelism. --validate gates the adaptive rows
         against the better static one. *)
      let spike_n = if q then 20 else 200 in
      List.iter
        (fun workers ->
          Printf.printf "[load_spike] P=%d%!" workers;
          (* Two samples per configuration: the --validate gate compares
             the best adaptive row against the best static row, so a
             single preempted sample (CI hosts are time-sliced) doesn't
             fail the run. Symmetric — every config gets the same
             best-of-two treatment. *)
          for _ = 1 to 2 do
            List.iter
              (fun variant ->
                note (bench_load_spike ~spikes:spike_n ~adaptive:false ~variant ~workers))
              [ S.Uslcws; S.Signal ];
            note (bench_load_spike ~spikes:spike_n ~adaptive:true ~variant:S.Uslcws ~workers)
          done;
          Printf.printf " done\n%!")
        [ 2; 8 ];
      Printf.printf "[sim] cache-miss sweep%!";
      let sim_rows = sim_sweep ~quick:q in
      Printf.printf " done\n%!";
      let json = suite_to_json ~quick:q (List.rev !samples) sim_rows in
      let oc = open_out !out in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s (%d results) in %.1fs\n" !out (List.length !samples)
        (Unix.gettimeofday () -. t0)
