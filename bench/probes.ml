(* The registry of the microbenchmark suite's probes — one source of
   truth shared between bench/suite.exe (which runs them and validates
   their JSON) and bin/lcws_bench's `list` command (which enumerates
   them). [gate] names the [--validate] contract a probe's rows are
   held to, if any; probes without a gate are measurements only (CI
   machines are too noisy to gate on raw timings). *)

type probe = {
  name : string;  (* the "bench" field of the emitted JSON rows *)
  unit_ : string;  (* what one [ops] counts *)
  descr : string;
  gate : string option;  (* the --validate contract, if gated *)
}

let all =
  [
    {
      name = "fork_join";
      unit_ = "joins";
      descr =
        "un-stolen fork/join chain on worker 0: ns/op and minor words/op of the \
         frame-pool hot path, swept over every deque implementation";
      gate = None;
    };
    {
      name = "parallel_for";
      unit_ = "iterations";
      descr = "trivial-body loop under lazy binary splitting";
      gate = None;
    };
    { name = "reduce"; unit_ = "elements"; descr = "Parlay-layer float reduce"; gate = None };
    { name = "scan"; unit_ = "elements"; descr = "Parlay-layer int scan"; gate = None };
    {
      name = "steal_heavy";
      unit_ = "forks";
      descr = "skewed spawn chain: helpers progress only by stealing";
      gate = None;
    };
    {
      name = "steal_heavy_skew";
      unit_ = "tasks";
      descr = "wide uneven future bursts with steal-half enabled (~steal_batch:8)";
      gate =
        Some
          "steal-batch: rows record batched episodes, extras on top of the episode \
           count, migrated > episodes in aggregate";
    };
    {
      name = "steal_heavy_skew_steal1";
      unit_ = "tasks";
      descr = "the same bursts pinned to classical steal-one (~steal_batch:1)";
      gate = Some "steal-batch: no batched episodes, migrated = episodes";
    };
    {
      name = "future";
      unit_ = "awaits";
      descr = "spawn+await chain: the fiber suspend/one-shot-resume handshake";
      gate = None;
    };
    {
      name = "submit";
      unit_ = "submissions";
      descr = "external submission through the MPSC injector, no Pool.run in flight";
      gate = None;
    };
    {
      name = "idle_cpu";
      unit_ = "window ms";
      descr = "quiet pool inside an active job: do idle workers park or spin?";
      gate = Some "idle-cpu: near-zero idle loops across the quiet window, >= 1 park";
    };
    {
      name = "load_spike";
      unit_ = "tasks";
      descr =
        "alternating quiet/burst phases on the static Uslcws and Signal pools, at \
         P=2 and P=8";
      gate = None;
    };
    {
      name = "load_spike_adaptive";
      unit_ = "tasks";
      descr = "the same phases on an elastic pool (Pool.create ~adaptive:true)";
      gate =
        Some
          "load-spike: adaptive throughput >= 0.95x the better static variant at \
           each P (0.75x on --quick runs: millisecond samples on time-sliced CI \
           hosts)";
    };
    {
      name = "sim_cache_miss";
      unit_ = "model cycles";
      descr =
        "deterministic simulator sweep: uniform vs near-first victims x steal-one \
         vs steal-half on a clustered 16-worker machine";
      gate =
        Some
          "sim-cache-miss: near-first pays strictly less miss cost than uniform; \
           steal-half rows actually batch";
    };
  ]

let pp ppf () =
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-24s per-op unit: %s@.    %s@." p.name p.unit_ p.descr;
      match p.gate with
      | Some g -> Format.fprintf ppf "    [gated] %s@." g
      | None -> ())
    all
