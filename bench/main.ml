(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figures 3-8, the Section 5 statistics), runs the
   related-work ablation, the real-engine counter profile and the deque
   microbenchmarks.

   Usage: dune exec bench/main.exe -- [options]
     --scale F      workload scale for the simulator (default 4.0)
     --quantum N    simulator work chunk in cycles (default 400)
     --figure N     only Figure N (3..8)
     --table 1      only Table 1
     --summary      only the Section 5 statistics
     --ablation     only the related-work ablation
     --sensitivity  only the cost-model sensitivity sweeps
     --csv PATH     also dump the full matrices as PATH-<machine>.csv
     --micro        only the deque microbenchmarks
     --real-profile only the real-engine counter profile
     --quick        scale 0.5 (fast smoke run)
   With no selection, everything runs in paper order. *)

let () =
  let scale = ref 4.0 in
  let quantum = ref 400 in
  let csv = ref None in
  let selected : string list ref = ref [] in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--quantum" :: v :: rest ->
        quantum := int_of_string v;
        parse rest
    | "--figure" :: v :: rest ->
        selected := ("fig" ^ v) :: !selected;
        parse rest
    | "--table" :: _ :: rest ->
        selected := "table1" :: !selected;
        parse rest
    | "--summary" :: rest ->
        selected := "summary" :: !selected;
        parse rest
    | "--ablation" :: rest ->
        selected := "ablation" :: !selected;
        parse rest
    | "--sensitivity" :: rest ->
        selected := "sensitivity" :: !selected;
        parse rest
    | "--micro" :: rest ->
        selected := "micro" :: !selected;
        parse rest
    | "--real-profile" :: rest ->
        selected := "real" :: !selected;
        parse rest
    | "--csv" :: path :: rest ->
        csv := Some path;
        parse rest
    | "--quick" :: rest ->
        scale := 0.5;
        parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl args);
  let ppf = Format.std_formatter in
  let ctx = Lcws_harness.Figures.make_ctx ~scale:!scale ~quantum:!quantum ~progress:true () in
  let want name = !selected = [] || List.mem name !selected in
  let t0 = Unix.gettimeofday () in
  Format.fprintf ppf
    "LCWS reproduction benchmark harness (scale=%.2f quantum=%d)@.Box plots are printed as \
     five-number summaries over all benchmark configs.@.@."
    !scale !quantum;
  if want "table1" then Lcws_harness.Figures.table1 ppf;
  if want "fig3" then Lcws_harness.Figures.fig3 ctx ppf;
  if want "fig4" then Lcws_harness.Figures.fig4 ctx ppf;
  if want "fig5" then Lcws_harness.Figures.fig5 ctx ppf;
  if want "fig6" then Lcws_harness.Figures.fig6 ctx ppf;
  if want "fig7" then Lcws_harness.Figures.fig7 ctx ppf;
  if want "fig8" then Lcws_harness.Figures.fig8 ctx ppf;
  if want "summary" then Lcws_harness.Figures.summary ctx ppf;
  if want "ablation" then Lcws_harness.Figures.ablation ctx ppf;
  if want "sensitivity" then Lcws_harness.Figures.sensitivity ctx ppf;
  (match !csv with
  | None -> ()
  | Some path ->
      List.iter
        (fun m ->
          let mat = Lcws_harness.Figures.machine_matrix ctx m in
          let file = Printf.sprintf "%s-%s.csv" path m.Lcws_sim.Cost_model.name in
          let oc = open_out file in
          output_string oc (Lcws_harness.Experiments.to_csv mat);
          close_out oc;
          Format.fprintf ppf "[csv] wrote %s@." file)
        Lcws_sim.Cost_model.all);
  if want "real" then Lcws_harness.Real_profile.run ppf;
  if want "micro" then Lcws_harness.Micro.run ppf;
  Format.fprintf ppf "@.[done in %.1fs]@." (Unix.gettimeofday () -. t0)
